package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/dqbf"
	"repro/internal/faultinject"

	// Engine registrations for the specs the tests dispatch through.
	_ "repro/internal/baselines/cegar"
	_ "repro/internal/core"
)

// tinyDQDIMACS is ∀x1 ∃y2(x1). ϕ = (x1→y2)∧(y2→x1), i.e. y2 ↔ x1 — True
// with the unique Skolem function y2 := x1. Small enough that manthan3
// solves it in single-digit milliseconds.
const tinyDQDIMACS = "p cnf 2 2\na 1 0\ne 2 0\n-1 2 0\n1 -2 0\n"

func postSynth(t *testing.T, client *http.Client, url string, req Request) (*http.Response, *Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /synthesize: %v", err)
	}
	defer resp.Body.Close()
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, &r
}

// startTestServer runs a full Server (workers + HTTP mux) on httptest
// plumbing and returns its base URL. The caller owns Shutdown.
func startTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.StartWorkers()
	ts := httptest.NewServer(srv.Handler())
	return srv, ts
}

func shutdownServer(t *testing.T, srv *Server, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ts.Close()
}

// blockingBackend returns a WrapBackend that replaces every engine with one
// that parks until release is closed (or the request context ends, which
// classifies as canceled).
func blockingBackend(release <-chan struct{}) func(backend.Backend) backend.Backend {
	return func(backend.Backend) backend.Backend {
		return backend.NewFunc("blocked", func(ctx context.Context, in *dqbf.Instance, opts backend.Options) (*backend.Result, error) {
			select {
			case <-release:
				return nil, fmt.Errorf("%w: released without an answer", backend.ErrBudget)
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %w", backend.ErrCanceled, ctx.Err())
			}
		})
	}
}

// TestSynthesizeEndToEnd: a real dispatch through the registry returns a
// verified vector with telemetry.
func TestSynthesizeEndToEnd(t *testing.T) {
	srv, ts := startTestServer(t, Config{Concurrency: 2})
	defer shutdownServer(t, srv, ts)
	resp, r := postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS, Spec: "manthan3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	if r.Status != "ok" || r.Outcome != backend.OutcomeOK || !r.Verified {
		t.Fatalf("response: %+v", r)
	}
	if len(r.Functions) == 0 || !strings.Contains(strings.Join(r.Functions, "\n"), "y2") {
		t.Fatalf("functions: %v", r.Functions)
	}
	st := srv.Stats()
	if st.Admitted != 1 || st.Completed != 1 || st.Outcomes["ok"] != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestQueueFullSheds429: with one worker and a one-deep queue, a third
// concurrent request must be shed immediately with 429 + Retry-After — never
// parked anywhere unbounded.
func TestQueueFullSheds429(t *testing.T) {
	release := make(chan struct{})
	srv, ts := startTestServer(t, Config{
		Concurrency: 1,
		QueueDepth:  1,
		WrapBackend: blockingBackend(release),
	})
	client := ts.Client()

	// Request 1 occupies the worker; request 2 occupies the queue slot.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postSynth(t, client, ts.URL, Request{DQDIMACS: tinyDQDIMACS, TimeoutMS: 30_000})
		}()
		// Wait until the request is observably held (in flight or queued)
		// before sending the next.
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := srv.Stats()
			if int(st.Admitted) >= i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("request %d never admitted: %+v", i+1, st)
			}
			time.Sleep(time.Millisecond)
		}
	}

	resp, r := postSynth(t, client, ts.URL, Request{DQDIMACS: tinyDQDIMACS})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429 (body %+v)", resp.StatusCode, r)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if r.Outcome != OutcomeShed {
		t.Fatalf("outcome %q, want %q", r.Outcome, OutcomeShed)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Fatalf("shed count: %+v", st)
	}

	close(release)
	wg.Wait()
	shutdownServer(t, srv, ts)
}

// TestDrainGoroutineLeakFree is the graceful-drain contract on the REAL
// listener path (Serve, not httptest): a request in flight when Shutdown
// begins completes; /readyz flips to 503 while the listener is still
// serving (i.e. before it closes); post-drain admission is refused; and the
// whole lifecycle leaks zero goroutines.
func TestDrainGoroutineLeakFree(t *testing.T) {
	baseline := runtime.NumGoroutine()

	release := make(chan struct{})
	srv, err := New(Config{
		Concurrency: 2,
		WrapBackend: blockingBackend(release),
		Breaker:     BreakerConfig{Threshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() {
		defer func() { _ = recover() }()
		serveErr <- srv.Serve(l)
	}()
	url := "http://" + l.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	// One request in flight, parked in the engine.
	reqDone := make(chan *Response, 1)
	go func() {
		defer func() { _ = recover() }()
		_, r := postSynth(t, client, url, Request{DQDIMACS: tinyDQDIMACS, TimeoutMS: 30_000})
		reqDone <- r
	}()
	waitFor(t, "request in flight", func() bool { return srv.Stats().InFlight == 1 })

	if code := getStatus(t, client, url+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: HTTP %d, want 200", code)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		defer func() { _ = recover() }()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// readyz must flip while the in-flight request still holds the drain
	// open — the listener is provably still serving because the probe itself
	// succeeds at the HTTP layer.
	waitFor(t, "readyz flips during drain", func() bool {
		return getStatus(t, client, url+"/readyz") == http.StatusServiceUnavailable
	})
	if code := getStatus(t, client, url+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain: HTTP %d, want 200 (liveness is not readiness)", code)
	}

	// New work is refused while draining.
	resp, r := postSynth(t, client, url, Request{DQDIMACS: tinyDQDIMACS})
	if resp.StatusCode != http.StatusServiceUnavailable || r.Outcome != OutcomeDraining {
		t.Fatalf("during drain: HTTP %d outcome %q, want 503 %q", resp.StatusCode, r.Outcome, OutcomeDraining)
	}

	// Let the in-flight request finish; the drain must then complete and the
	// request must have received a classified answer.
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	select {
	case r := <-reqDone:
		if r.Outcome != backend.OutcomeBudget {
			t.Fatalf("in-flight request outcome %q, want %q", r.Outcome, backend.OutcomeBudget)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	client.CloseIdleConnections()
	assertNoGoroutineLeak(t, baseline)
}

// TestQueueExpiredClassifiesCanceled: a queued request whose clamped
// deadline passes before a worker frees up is classified canceled without
// ever dispatching — queue wait spends the request's own budget.
func TestQueueExpiredClassifiesCanceled(t *testing.T) {
	release := make(chan struct{})
	srv, ts := startTestServer(t, Config{
		Concurrency: 1,
		QueueDepth:  4,
		WrapBackend: blockingBackend(release),
		Breaker:     BreakerConfig{Threshold: -1},
	})
	client := ts.Client()

	// Worker occupied with a long request; a short-deadline request waits in
	// queue and expires there.
	go func() {
		defer func() { _ = recover() }()
		postSynth(t, client, ts.URL, Request{DQDIMACS: tinyDQDIMACS, TimeoutMS: 30_000})
	}()
	waitFor(t, "long request in flight", func() bool { return srv.Stats().InFlight == 1 })

	shortDone := make(chan *Response, 1)
	go func() {
		defer func() { _ = recover() }()
		_, r := postSynth(t, client, ts.URL, Request{DQDIMACS: tinyDQDIMACS, TimeoutMS: 50})
		shortDone <- r
	}()
	waitFor(t, "short request queued", func() bool { return srv.Stats().Admitted == 2 })
	time.Sleep(80 * time.Millisecond) // let the queued deadline expire
	close(release)                    // free the worker; it must NOT dispatch the stale item

	select {
	case r := <-shortDone:
		if r.Outcome != backend.OutcomeCanceled {
			t.Fatalf("queue-expired outcome %q, want %q", r.Outcome, backend.OutcomeCanceled)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("short request never answered")
	}
	shutdownServer(t, srv, ts)
}

// TestBreakerTripsFailsFastAndReroutes: consecutive engine panics trip the
// primary's breaker; with no fallback the next request fails fast with 503,
// and with a fallback configured it reroutes and succeeds.
func TestBreakerTripsFailsFastAndReroutes(t *testing.T) {
	// Panic only when routed to manthan3; other specs run for real.
	wrap := func(b backend.Backend) backend.Backend {
		if b.Name() != "manthan3" {
			return b
		}
		return backend.NewFunc("manthan3", func(context.Context, *dqbf.Instance, backend.Options) (*backend.Result, error) {
			panic("engine bug")
		})
	}

	t.Run("fail-fast", func(t *testing.T) {
		srv, ts := startTestServer(t, Config{
			Concurrency: 1,
			WrapBackend: wrap,
			Breaker:     BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		})
		defer shutdownServer(t, srv, ts)
		for i := 0; i < 2; i++ {
			resp, r := postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS, Spec: "manthan3"})
			if resp.StatusCode != http.StatusOK || r.Outcome != backend.OutcomeInternal {
				t.Fatalf("panic request %d: HTTP %d outcome %q, want 200 %q", i, resp.StatusCode, r.Outcome, backend.OutcomeInternal)
			}
		}
		resp, r := postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS, Spec: "manthan3"})
		if resp.StatusCode != http.StatusServiceUnavailable || r.Outcome != OutcomeBreakerOpen {
			t.Fatalf("tripped: HTTP %d outcome %q, want 503 %q", resp.StatusCode, r.Outcome, OutcomeBreakerOpen)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("breaker-open 503 without Retry-After")
		}
		st := srv.Stats()
		if b, ok := st.Breakers["manthan3"]; !ok || b.State != "open" || b.Trips != 1 {
			t.Fatalf("breaker snapshot: %+v", st.Breakers)
		}
	})

	t.Run("reroute", func(t *testing.T) {
		srv, ts := startTestServer(t, Config{
			Concurrency: 1,
			WrapBackend: wrap,
			Breaker:     BreakerConfig{Threshold: 2, Cooldown: time.Hour},
			Fallbacks:   map[string]string{"manthan3": "cegar"},
		})
		defer shutdownServer(t, srv, ts)
		for i := 0; i < 2; i++ {
			postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS, Spec: "manthan3"})
		}
		resp, r := postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS, Spec: "manthan3", TimeoutMS: 20_000})
		if resp.StatusCode != http.StatusOK || r.Status != "ok" {
			t.Fatalf("reroute: HTTP %d %+v", resp.StatusCode, r)
		}
		if !r.Rerouted || r.Engine != "cegar" || !r.Verified {
			t.Fatalf("reroute: engine %q rerouted=%v verified=%v", r.Engine, r.Rerouted, r.Verified)
		}
		if st := srv.Stats(); st.Rerouted != 1 {
			t.Fatalf("rerouted count: %+v", st)
		}
	})
}

// TestBudgetFailuresDontTrip: budget exhaustion is a healthy outcome — the
// engine answered for itself — and must never open the breaker.
func TestBudgetFailuresDontTrip(t *testing.T) {
	wrap := func(backend.Backend) backend.Backend {
		return backend.NewFunc("budgety", func(context.Context, *dqbf.Instance, backend.Options) (*backend.Result, error) {
			return nil, fmt.Errorf("%w: conflict budget exhausted", backend.ErrBudget)
		})
	}
	srv, ts := startTestServer(t, Config{
		Concurrency: 1,
		WrapBackend: wrap,
		Breaker:     BreakerConfig{Threshold: 2, Cooldown: time.Hour},
	})
	defer shutdownServer(t, srv, ts)
	for i := 0; i < 5; i++ {
		resp, r := postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS})
		if resp.StatusCode != http.StatusOK || r.Outcome != backend.OutcomeBudget {
			t.Fatalf("request %d: HTTP %d outcome %q", i, resp.StatusCode, r.Outcome)
		}
	}
	if b := srv.Stats().Breakers["manthan3"]; b.State != "closed" || b.Trips != 0 {
		t.Fatalf("breaker: %+v", b)
	}
}

// TestVerifyRejectsBadVector: an engine returning a wrong vector must be
// caught by the service's independent verification and classified internal,
// never served as "ok".
func TestVerifyRejectsBadVector(t *testing.T) {
	wrap := func(backend.Backend) backend.Backend {
		return backend.NewFunc("liar", func(ctx context.Context, in *dqbf.Instance, opts backend.Options) (*backend.Result, error) {
			vec := dqbf.NewFuncVector(nil)
			for _, y := range in.Exist {
				vec.Funcs[y] = vec.B.True() // y2 := true is wrong for x1=0
			}
			return &backend.Result{Vector: vec, Stats: "fabricated"}, nil
		})
	}
	srv, ts := startTestServer(t, Config{Concurrency: 1, WrapBackend: wrap})
	defer shutdownServer(t, srv, ts)
	resp, r := postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	if r.Status != "error" || r.Outcome != backend.OutcomeInternal || r.Verified {
		t.Fatalf("bad vector served: %+v", r)
	}
	if !strings.Contains(r.Error, "failed verification") {
		t.Fatalf("error text: %q", r.Error)
	}
}

// TestWarmVerifyPoolReuse: repeat traffic on one formula reuses the warm
// verification pool (fingerprint hit) instead of re-encoding ¬ϕ.
func TestWarmVerifyPoolReuse(t *testing.T) {
	srv, ts := startTestServer(t, Config{Concurrency: 1})
	defer shutdownServer(t, srv, ts)
	for i := 0; i < 3; i++ {
		resp, r := postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS, TimeoutMS: 20_000})
		if resp.StatusCode != http.StatusOK || r.Status != "ok" || !r.Verified {
			t.Fatalf("request %d: HTTP %d %+v", i, resp.StatusCode, r)
		}
	}
	vs := srv.Stats().Verify
	if vs.Misses != 1 || vs.Hits != 2 || vs.WarmFormulas != 1 {
		t.Fatalf("verify stats: %+v (want 1 miss, 2 hits, 1 warm formula)", vs)
	}
}

// TestFaultSoak drives every fault-injection kind through the full service
// path under concurrency: the process must survive, classify every response
// through the taxonomy, and drain leak-free. This is the in-package half of
// the acceptance soak (benchrunner -serve-load is the overload half).
func TestFaultSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, plan := range []string{"panic@1", "budget@1", "unknown@1", "cancel@1", "stall(5ms)@1", "panic@1,stall(5ms)@2"} {
		t.Run(plan, func(t *testing.T) {
			rules, err := faultinject.Parse(plan)
			if err != nil {
				t.Fatal(err)
			}
			srv, ts := startTestServer(t, Config{
				Concurrency: 2,
				QueueDepth:  8,
				Breaker:     BreakerConfig{Threshold: -1},
				WrapBackend: func(b backend.Backend) backend.Backend {
					return faultinject.New(7, rules...).Backend(b)
				},
			})
			var wg sync.WaitGroup
			for i := 0; i < 6; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { _ = recover() }()
					resp, r := postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS, TimeoutMS: 10_000})
					switch resp.StatusCode {
					case http.StatusOK, http.StatusTooManyRequests:
					default:
						t.Errorf("HTTP %d: %+v", resp.StatusCode, r)
					}
					if r.Outcome == "" {
						t.Errorf("unclassified response: %+v", r)
					}
				}()
			}
			wg.Wait()
			shutdownServer(t, srv, ts)
			st := srv.Stats()
			var classified int64
			for _, n := range st.Outcomes {
				classified += n
			}
			if classified != st.Completed+st.Shed {
				t.Fatalf("classification gap: %+v", st)
			}
		})
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestStatzEndpoint: the telemetry endpoint serves well-formed JSON with the
// breaker, verify, and outcome blocks present.
func TestStatzEndpoint(t *testing.T) {
	srv, ts := startTestServer(t, Config{Concurrency: 1})
	defer shutdownServer(t, srv, ts)
	postSynth(t, ts.Client(), ts.URL, Request{DQDIMACS: tinyDQDIMACS, TimeoutMS: 20_000})
	resp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.Outcomes["ok"] != 1 || st.QueueCap == 0 {
		t.Fatalf("statz: %+v", st)
	}
	if _, ok := st.Breakers["manthan3"]; !ok {
		t.Fatalf("statz missing breaker for dispatched spec: %+v", st.Breakers)
	}
}

// TestBadRequests: parse failures are 400 with a bad-request outcome, not
// dispatches.
func TestBadRequests(t *testing.T) {
	srv, ts := startTestServer(t, Config{Concurrency: 1})
	defer shutdownServer(t, srv, ts)
	for name, req := range map[string]Request{
		"empty":    {},
		"garbage":  {DQDIMACS: "not a dqdimacs file"},
		"bad spec": {DQDIMACS: tinyDQDIMACS, Spec: "no-such-engine"},
	} {
		resp, r := postSynth(t, ts.Client(), ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest || r.Outcome != "bad-request" {
			t.Errorf("%s: HTTP %d outcome %q, want 400 bad-request", name, resp.StatusCode, r.Outcome)
		}
	}
	if st := srv.Stats(); st.Admitted != 0 {
		t.Fatalf("bad requests were admitted: %+v", st)
	}
}

func getStatus(t *testing.T, client *http.Client, url string) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return -1 // listener gone
	}
	resp.Body.Close()
	return resp.StatusCode
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertNoGoroutineLeak polls for the goroutine count to return to the
// baseline; lingering runtime/netpoll goroutines get a grace period (the
// same retry idiom as internal/backend's soak tests).
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	var n int
	for wait := time.Millisecond; wait < 4*time.Second; wait *= 2 {
		if n = runtime.NumGoroutine(); n <= baseline {
			return
		}
		time.Sleep(wait)
	}
	t.Fatalf("goroutine leak: %d running vs %d baseline", n, baseline)
}
