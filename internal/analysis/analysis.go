// Package analysis is the project-invariant static-analyzer suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, diagnostics, an analysistest-style fixture harness)
// plus five analyzers that turn this repository's runtime contracts into
// build-time guarantees. cmd/lintcheck is the multichecker front end and is
// part of tier-1 verify, so a contract violation fails the build the same way
// a vet error or a data race does.
//
// The five analyzers and the contracts they encode:
//
//	errtaxonomy    every error constructed inside an engine adapter package
//	               (internal/baselines/*, internal/core) must wrap — via
//	               fmt.Errorf with %w — a taxonomy sentinel or an already
//	               classified error, so backend.Classify never sees a bare
//	               unclassifiable error escape Synthesize. Package-level
//	               sentinel declarations (var ErrX = errors.New(...)) are the
//	               one permitted bare construction.
//	ctxdiscipline  context.Context parameters come first; context.Background/
//	               context.TODO are confined to main packages, _test files,
//	               and the `if ctx == nil { ctx = context.Background() }`
//	               nil-guard idiom; and every unbounded `for` loop in
//	               internal/sat, internal/core, and internal/backend must be
//	               cancellable (a ctx parameter, a ctx-carrying receiver, or
//	               a ctx-typed expression in the loop's function).
//	gorecover      every `go func` literal in non-test internal/ code must
//	               contain a deferred recover() or call a *Safe-suffixed
//	               wrapper (the panic-isolation contract); `go name(...)` is
//	               only permitted for *Safe wrappers.
//	determorder    in packages carrying a //lint:deterministic directive,
//	               ranging over a map while accumulating into outer state
//	               (append, concatenation) without a subsequent sort is
//	               flagged, as are time.Now/time.Since and the global
//	               math/rand functions — the parallel-phase determinism
//	               contract (identical results for every worker count).
//	registerinit   backend.Register may only be called from an init function,
//	               so the registry is fully populated before main runs and
//	               duplicate-registration panics surface at process start.
//
// # Directives
//
// Two comment directives steer the suite:
//
//	//lint:deterministic
//	    Package-level opt-in (conventionally placed in the package's doc
//	    file) that puts the package under determorder's rules.
//
//	//lint:ignore <analyzer> <reason>
//	    Suppresses the named analyzer's diagnostics on the same line or the
//	    line directly below the directive. The reason is mandatory: an
//	    ignore with no reason text does not suppress anything and is itself
//	    reported as a diagnostic, so every suppression in the tree documents
//	    why the contract does not apply at that site.
//
// Analyzer fixtures with // want annotations live under testdata/src in the
// analysistest layout (directory path == fixture import path), so analyzers
// that key on real package paths (repro/internal/baselines/..., the
// repro/internal/backend registry) are exercised against stub packages with
// matching import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker, mirroring the
// golang.org/x/tools/go/analysis shape so the checkers would port to the
// upstream framework mechanically if the dependency ever became available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract statement shown by lintcheck -help.
	Doc string
	// Run inspects one package and reports violations via pass.Reportf.
	Run func(pass *Pass) error
}

// A Package is one loaded, type-checked package: the unit an Analyzer runs
// over. Loader (go-list mode) and FixtureLoader (testdata mode) both produce
// it, so analyzers and tests share one code path.
type Package struct {
	// Path is the import path. Fixture packages carry the import path their
	// testdata/src directory encodes, which is how path-gated analyzers are
	// tested against stub trees.
	Path string
	// Name is the package name from the source.
	Name string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed sources, comments included, in load order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker fact maps for Files.
	Info *types.Info
	// Directives are the package's parsed //lint: directives.
	Directives Directives
}

// Pass carries one (Analyzer, Package) pairing through Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos. Suppression (//lint:ignore) is
// applied by the runner, not here, so analyzers stay oblivious to the
// directive machinery.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported contract violation, resolved to a concrete
// file position for printing and for //lint:ignore matching.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's Name.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message is the human-readable finding.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}
