package boolfunc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// Parse reads a Boolean expression in the syntax produced by String:
//
//	expr  := or
//	or    := xor ('|' xor)*
//	xor   := and ('^' and)*
//	and   := unary ('&' unary)*
//	unary := '~' unary | atom
//	atom  := '0' | '1' | v<N> | ite(expr, expr, expr) | '(' expr ')'
//
// Whitespace is ignored. Operator precedence is ~ > & > ^ > |.
func Parse(b *Builder, s string) (Node, error) {
	p := &parser{b: b, in: s}
	n, err := p.parseOr()
	if err != nil {
		return None, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return None, fmt.Errorf("boolfunc: trailing input at offset %d: %q", p.pos, p.in[p.pos:])
	}
	return n, nil
}

type parser struct {
	b   *Builder
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) parseOr() (Node, error) {
	n, err := p.parseXor()
	if err != nil {
		return None, err
	}
	for p.peek() == '|' {
		p.pos++
		m, err := p.parseXor()
		if err != nil {
			return None, err
		}
		n = p.b.Or(n, m)
	}
	return n, nil
}

func (p *parser) parseXor() (Node, error) {
	n, err := p.parseAnd()
	if err != nil {
		return None, err
	}
	for p.peek() == '^' {
		p.pos++
		m, err := p.parseAnd()
		if err != nil {
			return None, err
		}
		n = p.b.Xor(n, m)
	}
	return n, nil
}

func (p *parser) parseAnd() (Node, error) {
	n, err := p.parseUnary()
	if err != nil {
		return None, err
	}
	for p.peek() == '&' {
		p.pos++
		m, err := p.parseUnary()
		if err != nil {
			return None, err
		}
		n = p.b.And(n, m)
	}
	return n, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.peek() == '~' {
		p.pos++
		n, err := p.parseUnary()
		if err != nil {
			return None, err
		}
		return p.b.Not(n), nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Node, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		n, err := p.parseOr()
		if err != nil {
			return None, err
		}
		if p.peek() != ')' {
			return None, fmt.Errorf("boolfunc: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return n, nil
	case c == '0':
		p.pos++
		return p.b.False(), nil
	case c == '1':
		p.pos++
		return p.b.True(), nil
	case c == 'v':
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
			p.pos++
		}
		if start == p.pos {
			return None, fmt.Errorf("boolfunc: expected variable number at offset %d", p.pos)
		}
		v, err := strconv.Atoi(p.in[start:p.pos])
		if err != nil || v <= 0 {
			return None, fmt.Errorf("boolfunc: bad variable %q", p.in[start-1:p.pos])
		}
		return p.b.Var(cnf.Var(v)), nil
	case c == 'i' && strings.HasPrefix(p.in[p.pos:], "ite"):
		p.pos += 3
		if p.peek() != '(' {
			return None, fmt.Errorf("boolfunc: expected '(' after ite at offset %d", p.pos)
		}
		p.pos++
		args := make([]Node, 0, 3)
		for i := 0; i < 3; i++ {
			n, err := p.parseOr()
			if err != nil {
				return None, err
			}
			args = append(args, n)
			want := byte(',')
			if i == 2 {
				want = ')'
			}
			if p.peek() != want {
				return None, fmt.Errorf("boolfunc: expected %q in ite at offset %d", want, p.pos)
			}
			p.pos++
		}
		return p.b.Ite(args[0], args[1], args[2]), nil
	case c == 0:
		return None, fmt.Errorf("boolfunc: unexpected end of input")
	default:
		return None, fmt.Errorf("boolfunc: unexpected %q at offset %d", c, p.pos)
	}
}
