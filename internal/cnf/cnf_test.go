package cnf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := PosLit(5)
	if l.Var() != 5 || !l.IsPos() {
		t.Fatalf("PosLit(5) broken: %v", l)
	}
	n := l.Neg()
	if n.Var() != 5 || n.IsPos() {
		t.Fatalf("Neg broken: %v", n)
	}
	if n.Neg() != l {
		t.Fatal("double negation is not identity")
	}
	if MkLit(3, true) != PosLit(3) || MkLit(3, false) != NegLit(3) {
		t.Fatal("MkLit polarity broken")
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{3, -1, 3, 2}
	n, taut := c.Normalize()
	if taut {
		t.Fatal("unexpected tautology")
	}
	if len(n) != 3 {
		t.Fatalf("dedup failed: %v", n)
	}
	c2 := Clause{1, -1}
	if _, taut := c2.Normalize(); !taut {
		t.Fatal("tautology not detected")
	}
	// Original clause untouched.
	if len(c) != 4 {
		t.Fatal("Normalize mutated receiver")
	}
}

func TestAssignmentValues(t *testing.T) {
	a := NewAssignment(3)
	if a.Get(1) != Unassigned {
		t.Fatal("fresh assignment not Unassigned")
	}
	a.SetBool(1, true)
	a.SetBool(2, false)
	if a.LitValue(1) != True || a.LitValue(-1) != False {
		t.Fatal("LitValue positive broken")
	}
	if a.LitValue(2) != False || a.LitValue(-2) != True {
		t.Fatal("LitValue negative broken")
	}
	if a.LitValue(3) != Unassigned || a.LitValue(-3) != Unassigned {
		t.Fatal("LitValue unassigned broken")
	}
	if a.Get(99) != Unassigned {
		t.Fatal("out-of-range Get should be Unassigned")
	}
}

func TestValueNot(t *testing.T) {
	if True.Not() != False || False.Not() != True || Unassigned.Not() != Unassigned {
		t.Fatal("Value.Not broken")
	}
	if BoolValue(true) != True || BoolValue(false) != False {
		t.Fatal("BoolValue broken")
	}
}

func TestAssignmentRestrict(t *testing.T) {
	a := NewAssignment(4)
	a.SetBool(1, true)
	a.SetBool(2, false)
	a.SetBool(3, true)
	r := a.Restrict([]Var{1, 3})
	if r.Get(1) != True || r.Get(3) != True {
		t.Fatal("restricted vars lost")
	}
	if r.Get(2) != Unassigned {
		t.Fatal("non-restricted var leaked")
	}
}

func TestFormulaEval(t *testing.T) {
	f := New(2)
	f.AddClause(1, 2)
	f.AddClause(-1, 2)
	a := NewAssignment(2)
	a.SetBool(1, true)
	a.SetBool(2, true)
	if !f.Eval(a) {
		t.Fatal("satisfying assignment rejected")
	}
	a.SetBool(2, false)
	if f.Eval(a) {
		t.Fatal("falsifying assignment accepted")
	}
}

func TestGateEncodings(t *testing.T) {
	// For each gate encoding, enumerate all input assignments and check the
	// gate variable is forced to the gate's semantics.
	type gate struct {
		name string
		add  func(f *Formula, z, a, b Lit)
		eval func(a, b bool) bool
	}
	gates := []gate{
		{"and", (*Formula).AddAnd, func(a, b bool) bool { return a && b }},
		{"or", (*Formula).AddOr, func(a, b bool) bool { return a || b }},
		{"xor", (*Formula).AddXor, func(a, b bool) bool { return a != b }},
	}
	for _, g := range gates {
		for mask := 0; mask < 8; mask++ {
			f := New(3)
			g.add(f, 3, 1, 2)
			a := NewAssignment(3)
			av, bv, zv := mask&1 != 0, mask&2 != 0, mask&4 != 0
			a.SetBool(1, av)
			a.SetBool(2, bv)
			a.SetBool(3, zv)
			want := zv == g.eval(av, bv)
			if got := f.Eval(a); got != want {
				t.Fatalf("%s gate: inputs a=%v b=%v z=%v: eval=%v want %v", g.name, av, bv, zv, got, want)
			}
		}
	}
}

func TestAddAndNOrN(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4} {
		f := New(n + 1)
		z := PosLit(Var(n + 1))
		in := make([]Lit, n)
		for i := range in {
			in[i] = PosLit(Var(i + 1))
		}
		f.AddAndN(z, in)
		for mask := 0; mask < 1<<(n+1); mask++ {
			a := NewAssignment(n + 1)
			allTrue := true
			for i := 0; i < n; i++ {
				b := mask&(1<<i) != 0
				a.SetBool(Var(i+1), b)
				if !b {
					allTrue = false
				}
			}
			zv := mask&(1<<n) != 0
			a.SetBool(Var(n+1), zv)
			want := zv == allTrue
			if got := f.Eval(a); got != want {
				t.Fatalf("AddAndN n=%d mask=%d: eval=%v want %v", n, mask, got, want)
			}
		}
		g := New(n + 1)
		g.AddOrN(z, in)
		for mask := 0; mask < 1<<(n+1); mask++ {
			a := NewAssignment(n + 1)
			anyTrue := false
			for i := 0; i < n; i++ {
				b := mask&(1<<i) != 0
				a.SetBool(Var(i+1), b)
				if b {
					anyTrue = true
				}
			}
			zv := mask&(1<<n) != 0
			a.SetBool(Var(n+1), zv)
			want := zv == anyTrue
			if got := g.Eval(a); got != want {
				t.Fatalf("AddOrN n=%d mask=%d: eval=%v want %v", n, mask, got, want)
			}
		}
	}
}

func TestNegationInto(t *testing.T) {
	// ¬f must be satisfied exactly by assignments falsifying f (projected on
	// original vars). Check by brute force over originals with the selector
	// semantics: for each original assignment, ¬f encoding is satisfiable in
	// the aux vars iff f is false.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		f := New(n)
		for i := 0; i < 1+rng.Intn(5); i++ {
			k := 1 + rng.Intn(3)
			c := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0))
			}
			f.AddClause(c...)
		}
		dst := New(n)
		f.NegationInto(dst)
		for mask := 0; mask < 1<<n; mask++ {
			orig := NewAssignment(n)
			for v := 1; v <= n; v++ {
				orig.SetBool(Var(v), mask&(1<<(v-1)) != 0)
			}
			fVal := f.Eval(orig)
			// extend orig over dst's aux vars by exhaustive search
			aux := dst.NumVars - n
			negSat := false
			for am := 0; am < 1<<aux; am++ {
				full := NewAssignment(dst.NumVars)
				copy(full[:n+1], orig[:n+1])
				for i := 0; i < aux; i++ {
					full.SetBool(Var(n+1+i), am&(1<<i) != 0)
				}
				if dst.Eval(full) {
					negSat = true
					break
				}
			}
			if negSat == fVal {
				t.Fatalf("trial %d mask %d: f=%v but ¬f satisfiable=%v", trial, mask, fVal, negSat)
			}
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := New(4)
	f.AddClause(1, -2, 3)
	f.AddClause(-4)
	f.AddClause(2, 4)
	var b strings.Builder
	if err := WriteDIMACS(&b, f); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip mismatch: %d/%d vars, %d/%d clauses",
			g.NumVars, f.NumVars, len(g.Clauses), len(f.Clauses))
	}
	for i := range f.Clauses {
		if f.Clauses[i].String() != g.Clauses[i].String() {
			t.Fatalf("clause %d mismatch: %v vs %v", i, f.Clauses[i], g.Clauses[i])
		}
	}
}

func TestDIMACSRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		f := New(n)
		for i := 0; i < rng.Intn(20); i++ {
			k := 1 + rng.Intn(4)
			c := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0))
			}
			f.AddClause(c...)
		}
		var b strings.Builder
		if err := WriteDIMACS(&b, f); err != nil {
			return false
		}
		g, err := ParseDIMACS(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
			return false
		}
		for i := range f.Clauses {
			if f.Clauses[i].String() != g.Clauses[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad problem line": "p cnf x 3\n1 0\n",
		"bad literal":      "p cnf 2 1\n1 foo 0\n",
		"dup problem":      "p cnf 1 1\np cnf 1 1\n1 0\n",
	}
	for name, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseDIMACSTolerance(t *testing.T) {
	in := "c comment\n% also skipped\np cnf 3 2\n1 -2\n3 0\n-1 2 3 0"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses spanning lines mishandled: %d clauses", len(f.Clauses))
	}
	if f.Clauses[0].String() != "1 -2 3 0" {
		t.Fatalf("clause 0: %v", f.Clauses[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(2)
	f.AddClause(1, 2)
	g := f.Clone()
	g.AddClause(-1)
	g.Clauses[0][0] = -2
	if len(f.Clauses) != 1 || f.Clauses[0][0] != 1 {
		t.Fatal("Clone shares state with original")
	}
}

func TestNewVarGrowth(t *testing.T) {
	f := New(0)
	v1 := f.NewVar()
	vs := f.NewVars(3)
	if v1 != 1 || vs[0] != 2 || vs[2] != 4 || f.NumVars != 4 {
		t.Fatalf("variable allocation broken: %v %v %d", v1, vs, f.NumVars)
	}
	f.AddClause(10)
	if f.NumVars != 10 {
		t.Fatal("AddClause must grow NumVars")
	}
}

func TestVars(t *testing.T) {
	f := New(10)
	f.AddClause(3, -7)
	f.AddClause(-3, 5)
	got := f.Vars()
	want := []Var{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Vars: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars: %v, want %v", got, want)
		}
	}
}
